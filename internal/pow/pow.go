// Package pow implements the lightweight proof-of-work nonce search of
// 2LDAG (paper Eq. 5): a node must find a nonce n such that
// H(M(b^d), Δ, n) ≤ ρ before publishing a block. The difficulty ρ is
// deliberately tiny — it exists to rate-limit block generation (the DoS
// defense of Sec. IV-D5, the same strategy as IOTA), not to elect miners.
//
// Difficulty is expressed as the required number of leading zero bits of
// the digest, which is equivalent to the paper's "≤ ρ" threshold form
// with ρ = 2^(256-k) - 1.
package pow

import (
	"encoding/binary"
	"errors"
	"fmt"

	"github.com/twoldag/twoldag/internal/digest"
)

// Difficulty is the required number of leading zero bits (0..=256).
// The zero value accepts every digest, which is useful in tests.
type Difficulty uint8

// DefaultDifficulty keeps nonce search around tens of microseconds on a
// desktop CPU — "found quickly, e.g. in seconds" on an IoT-class device
// per the paper — while still throttling flooding attackers.
const DefaultDifficulty Difficulty = 8

// NonceSize is the wire size of a nonce in bytes (f_n = 32 bits).
const NonceSize = 4

// ErrExhausted reports that no satisfying nonce was found within the
// caller's bound.
var ErrExhausted = errors.New("pow: nonce space exhausted without solution")

// Meets reports whether d satisfies the difficulty.
func Meets(d digest.Digest, diff Difficulty) bool {
	return d.LeadingZeroBits() >= int(diff)
}

// AppendNonce appends the 4-byte little-endian encoding of nonce to b.
func AppendNonce(b []byte, nonce uint32) []byte {
	return binary.LittleEndian.AppendUint32(b, nonce)
}

// SearchPrefix finds the smallest nonce such that
// H(prefix || nonce_le32) has at least diff leading zero bits, trying at
// most maxTries nonces (0 means the full 2^32 space).
func SearchPrefix(prefix []byte, diff Difficulty, maxTries uint64) (uint32, digest.Digest, error) {
	if maxTries == 0 || maxTries > 1<<32 {
		maxTries = 1 << 32
	}
	buf := make([]byte, len(prefix)+NonceSize)
	copy(buf, prefix)
	for i := uint64(0); i < maxTries; i++ {
		nonce := uint32(i)
		binary.LittleEndian.PutUint32(buf[len(prefix):], nonce)
		d := digest.Sum(buf)
		if Meets(d, diff) {
			return nonce, d, nil
		}
	}
	return 0, digest.Digest{}, fmt.Errorf("%w: difficulty %d after %d tries", ErrExhausted, diff, maxTries)
}

// VerifyPrefix checks that nonce solves the puzzle for prefix at diff.
func VerifyPrefix(prefix []byte, nonce uint32, diff Difficulty) bool {
	return Meets(digest.Sum(AppendNonce(prefix, nonce)), diff)
}

// ExpectedTries returns the expected number of hash evaluations to solve
// a puzzle at the given difficulty (2^diff). It saturates at 2^63 to stay
// in range. Useful for calibrating block-generation intervals.
func ExpectedTries(diff Difficulty) uint64 {
	if diff >= 63 {
		return 1 << 63
	}
	return 1 << diff
}
