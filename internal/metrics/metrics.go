// Package metrics provides the cost-accounting primitives behind the
// paper's evaluation: the traffic Purpose taxonomy (DAG construction
// vs. consensus, Fig. 8), per-slot series (Figs. 7–8) and empirical
// CDFs (Figs. 7(d), 8(d)). The per-node counters themselves live with
// their accountants (e.g. the simulator's atomic cells), keyed by
// Purpose.
package metrics

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"strings"
)

// ErrEmpty reports an operation over an empty sample set.
var ErrEmpty = errors.New("metrics: no samples")

// Purpose classifies communication for the Fig. 8 breakdown.
type Purpose int

const (
	// Construction is DAG-construction traffic: digest announcements
	// (Sec. III-D).
	Construction Purpose = iota + 1
	// Consensus is PoP traffic: REQ_CHILD/RPY_CHILD and block
	// retrievals (Sec. IV).
	Consensus
)

// String names the purpose.
func (p Purpose) String() string {
	switch p {
	case Construction:
		return "construction"
	case Consensus:
		return "consensus"
	default:
		return fmt.Sprintf("purpose(%d)", int(p))
	}
}

// Series is an ordered sequence of (x, y) samples — one figure line.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Append adds a point.
func (s *Series) Append(x, y float64) {
	s.X = append(s.X, x)
	s.Y = append(s.Y, y)
}

// Len returns the number of points.
func (s *Series) Len() int { return len(s.X) }

// Last returns the final y value.
func (s *Series) Last() (float64, error) {
	if len(s.Y) == 0 {
		return 0, fmt.Errorf("%w: series %q", ErrEmpty, s.Name)
	}
	return s.Y[len(s.Y)-1], nil
}

// CDF is an empirical cumulative distribution over a sample set.
type CDF struct {
	sorted []float64
}

// NewCDF builds a CDF from samples (copied, then sorted).
func NewCDF(samples []float64) (*CDF, error) {
	if len(samples) == 0 {
		return nil, ErrEmpty
	}
	cp := append([]float64(nil), samples...)
	sort.Float64s(cp)
	return &CDF{sorted: cp}, nil
}

// At returns P(X ≤ x).
func (c *CDF) At(x float64) float64 {
	i := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(i) / float64(len(c.sorted))
}

// Quantile returns the q-th quantile (0 ≤ q ≤ 1, nearest-rank).
func (c *CDF) Quantile(q float64) float64 {
	if q <= 0 {
		return c.sorted[0]
	}
	if q >= 1 {
		return c.sorted[len(c.sorted)-1]
	}
	i := int(math.Ceil(q*float64(len(c.sorted)))) - 1
	if i < 0 {
		i = 0
	}
	return c.sorted[i]
}

// Min returns the smallest sample.
func (c *CDF) Min() float64 { return c.sorted[0] }

// Max returns the largest sample.
func (c *CDF) Max() float64 { return c.sorted[len(c.sorted)-1] }

// Mean returns the sample mean.
func (c *CDF) Mean() float64 {
	sum := 0.0
	for _, v := range c.sorted {
		sum += v
	}
	return sum / float64(len(c.sorted))
}

// Points renders the CDF as (value, probability) steps, one per sample.
func (c *CDF) Points() ([]float64, []float64) {
	xs := append([]float64(nil), c.sorted...)
	ys := make([]float64, len(xs))
	for i := range xs {
		ys[i] = float64(i+1) / float64(len(xs))
	}
	return xs, ys
}

// Table renders series side by side as an aligned text table with one
// row per x value (series are assumed to share x grids; missing cells
// render blank). Used by cmd/experiments for human-readable output.
func Table(header string, series ...*Series) string {
	var b strings.Builder
	b.WriteString(header)
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	// Collect the union of x values.
	seen := make(map[float64]bool)
	var xs []float64
	for _, s := range series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	sort.Float64s(xs)
	fmt.Fprintf(&b, "%12s", "x")
	for _, s := range series {
		fmt.Fprintf(&b, " %22s", s.Name)
	}
	b.WriteByte('\n')
	for _, x := range xs {
		fmt.Fprintf(&b, "%12.4g", x)
		for _, s := range series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = fmt.Sprintf("%.6g", s.Y[i])
					break
				}
			}
			fmt.Fprintf(&b, " %22s", cell)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// CSV renders series as comma-separated rows: x, then one column per
// series.
func CSV(series ...*Series) string {
	var b strings.Builder
	b.WriteString("x")
	for _, s := range series {
		b.WriteByte(',')
		b.WriteString(s.Name)
	}
	b.WriteByte('\n')
	if len(series) == 0 {
		return b.String()
	}
	n := 0
	for _, s := range series {
		if s.Len() > n {
			n = s.Len()
		}
	}
	for i := 0; i < n; i++ {
		for j, s := range series {
			if j == 0 {
				if i < len(s.X) {
					fmt.Fprintf(&b, "%g", s.X[i])
				}
			}
			b.WriteByte(',')
			if i < len(s.Y) {
				fmt.Fprintf(&b, "%g", s.Y[i])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// BitsToMB converts bits to megabytes (10^6 bytes, as the paper's MB
// axes).
func BitsToMB(bits int64) float64 { return float64(bits) / 8e6 }

// BitsToMb converts bits to megabits (the paper's Mb axes in Fig. 8).
func BitsToMb(bits int64) float64 { return float64(bits) / 1e6 }
