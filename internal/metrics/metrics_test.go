package metrics

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPurposeString(t *testing.T) {
	if Construction.String() != "construction" || Consensus.String() != "consensus" {
		t.Fatal("purpose names wrong")
	}
	if Purpose(9).String() == "" {
		t.Fatal("unknown purpose must render")
	}
}

func TestSeries(t *testing.T) {
	var s Series
	s.Name = "test"
	s.Append(1, 10)
	s.Append(2, 20)
	if s.Len() != 2 {
		t.Fatal("Len wrong")
	}
	last, err := s.Last()
	if err != nil || last != 20 {
		t.Fatalf("Last = %v, %v", last, err)
	}
	var empty Series
	if _, err := empty.Last(); err == nil {
		t.Fatal("Last on empty series must error")
	}
}

func TestCDFBasics(t *testing.T) {
	c, err := NewCDF([]float64{3, 1, 2, 4})
	if err != nil {
		t.Fatal(err)
	}
	if c.Min() != 1 || c.Max() != 4 {
		t.Fatal("min/max wrong")
	}
	if got := c.At(2); got != 0.5 {
		t.Fatalf("At(2) = %v, want 0.5", got)
	}
	if got := c.At(0.5); got != 0 {
		t.Fatalf("At(0.5) = %v, want 0", got)
	}
	if got := c.At(4); got != 1 {
		t.Fatalf("At(4) = %v, want 1", got)
	}
	if got := c.Mean(); got != 2.5 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestCDFQuantile(t *testing.T) {
	c, _ := NewCDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	if q := c.Quantile(0.5); q != 50 {
		t.Fatalf("median = %v, want 50", q)
	}
	if q := c.Quantile(0.9); q != 90 {
		t.Fatalf("p90 = %v, want 90", q)
	}
	if c.Quantile(0) != 10 || c.Quantile(1) != 100 {
		t.Fatal("extreme quantiles wrong")
	}
}

func TestCDFEmpty(t *testing.T) {
	if _, err := NewCDF(nil); err == nil {
		t.Fatal("empty CDF accepted")
	}
}

func TestCDFPoints(t *testing.T) {
	c, _ := NewCDF([]float64{5, 1})
	xs, ys := c.Points()
	if xs[0] != 1 || xs[1] != 5 || ys[0] != 0.5 || ys[1] != 1 {
		t.Fatalf("points wrong: %v %v", xs, ys)
	}
}

func TestCDFDoesNotMutateInput(t *testing.T) {
	in := []float64{3, 1, 2}
	if _, err := NewCDF(in); err != nil {
		t.Fatal(err)
	}
	if in[0] != 3 {
		t.Fatal("NewCDF sorted the caller's slice")
	}
}

func TestTableAndCSV(t *testing.T) {
	a := &Series{Name: "pbft"}
	a.Append(1, 100)
	a.Append(2, 200)
	b := &Series{Name: "2ldag"}
	b.Append(1, 1)
	b.Append(2, 2)
	tbl := Table("storage", a, b)
	if !strings.Contains(tbl, "pbft") || !strings.Contains(tbl, "2ldag") {
		t.Fatal("table missing series names")
	}
	if !strings.Contains(tbl, "200") {
		t.Fatal("table missing values")
	}
	csv := CSV(a, b)
	lines := strings.Split(strings.TrimSpace(csv), "\n")
	if lines[0] != "x,pbft,2ldag" {
		t.Fatalf("csv header = %q", lines[0])
	}
	if lines[2] != "2,200,2" {
		t.Fatalf("csv row = %q", lines[2])
	}
}

func TestUnitConversions(t *testing.T) {
	if BitsToMB(8e6) != 1 {
		t.Fatal("BitsToMB wrong")
	}
	if BitsToMb(1e6) != 1 {
		t.Fatal("BitsToMb wrong")
	}
}

func TestQuickCDFMonotone(t *testing.T) {
	f := func(raw []float64) bool {
		samples := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				samples = append(samples, v)
			}
		}
		if len(samples) == 0 {
			return true
		}
		c, err := NewCDF(samples)
		if err != nil {
			return false
		}
		// CDF must be monotone over its own sample points.
		xs, ys := c.Points()
		for i := 1; i < len(xs); i++ {
			if xs[i] < xs[i-1] || ys[i] < ys[i-1] {
				return false
			}
		}
		return c.At(c.Max()) == 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
