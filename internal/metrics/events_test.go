package metrics

import (
	"strings"
	"testing"

	"github.com/twoldag/twoldag/internal/digest"
	"github.com/twoldag/twoldag/internal/events"
	"github.com/twoldag/twoldag/internal/identity"
	"github.com/twoldag/twoldag/internal/ledger"
)

// EventCounters must keep satisfying the ledger's commit-observer
// contract structurally (the package itself stays ledger-free).
var _ ledger.CommitObserver = (*EventCounters)(nil)

// TestEventCountersBatchDelivery pins the batched-path aggregation:
// one batch counts as one flush plus len(Digests) accepted
// deliveries, so DigestsAnnounced agrees between delivery paths.
func TestEventCountersBatchDelivery(t *testing.T) {
	var c EventCounters
	c.OnDigestAnnounced(events.DigestAnnounced{From: 1, To: 2})
	c.OnDigestBatchDelivered(events.DigestBatchDelivered{
		To:      2,
		From:    []identity.NodeID{1, 3, 4},
		Digests: make([]digest.Digest, 3),
	})
	if got := c.DigestsAnnounced(); got != 4 {
		t.Fatalf("DigestsAnnounced = %d, want 1 singleton + 3 batched = 4", got)
	}
	if got := c.DigestBatchesDelivered(); got != 1 {
		t.Fatalf("DigestBatchesDelivered = %d, want 1", got)
	}
}

// TestWritePrometheusGolden pins the text exposition format byte for
// byte: HELP, TYPE and sample lines for every counter, in a fixed
// order, so scrapers (and dashboards built on them) never see churn.
func TestWritePrometheusGolden(t *testing.T) {
	var c EventCounters
	for i := 0; i < 3; i++ {
		c.OnBlockSealed(events.BlockSealed{})
	}
	c.OnDigestAnnounced(events.DigestAnnounced{})
	c.OnDigestBatchDelivered(events.DigestBatchDelivered{From: []identity.NodeID{1, 2}, Digests: nil})
	c.OnAuditHop(events.AuditHop{})
	c.OnConsensusReached(events.ConsensusReached{})
	c.OnAuditFailed(events.AuditFailed{})
	c.OnMessageDropped(events.MessageDropped{Reason: events.DropBackpressure})
	c.OnMessageDropped(events.MessageDropped{Reason: events.DropInjected})
	c.OnRetryAttempted(events.RetryAttempted{Attempt: 2})
	c.OnPeerSuspected(events.PeerSuspected{Failures: 2})
	c.OnPeerRecovered(events.PeerRecovered{})
	c.OnWALCommit(1, 120)   // SyncAlways-shaped window
	c.OnWALCommit(8, 960)   // boundary lands in the le="8" bucket
	c.OnWALCommit(40, 4800) // le="64"

	var sb strings.Builder
	if err := c.WritePrometheus(&sb); err != nil {
		t.Fatal(err)
	}
	const want = `# HELP twoldag_blocks_sealed_total Blocks sealed (mined, signed, appended) across the deployment.
# TYPE twoldag_blocks_sealed_total counter
twoldag_blocks_sealed_total 3
# HELP twoldag_digests_announced_total Digest announcements accepted into neighbor caches (receiver side).
# TYPE twoldag_digests_announced_total counter
twoldag_digests_announced_total 1
# HELP twoldag_digest_batches_delivered_total Batched announcement flushes ingested (one per receiver per flush).
# TYPE twoldag_digest_batches_delivered_total counter
twoldag_digest_batches_delivered_total 1
# HELP twoldag_audit_hops_total REQ_CHILD probes issued by PoP validators.
# TYPE twoldag_audit_hops_total counter
twoldag_audit_hops_total 1
# HELP twoldag_consensus_reached_total Audits that collected gamma+1 distinct vouchers.
# TYPE twoldag_consensus_reached_total counter
twoldag_consensus_reached_total 1
# HELP twoldag_audits_failed_total Audits that ended without consensus.
# TYPE twoldag_audits_failed_total counter
twoldag_audits_failed_total 1
# HELP twoldag_messages_dropped_total Frames lost to backpressure, unreachable peers or injected faults.
# TYPE twoldag_messages_dropped_total counter
twoldag_messages_dropped_total 2
# HELP twoldag_retries_attempted_total Announcement frames and PoP requests re-issued after a failed attempt.
# TYPE twoldag_retries_attempted_total counter
twoldag_retries_attempted_total 1
# HELP twoldag_peers_suspected_total Circuit-breaker openings after consecutive transport failures.
# TYPE twoldag_peers_suspected_total counter
twoldag_peers_suspected_total 1
# HELP twoldag_peers_recovered_total Recovery probes that re-admitted a suspected peer.
# TYPE twoldag_peers_recovered_total counter
twoldag_peers_recovered_total 1
# HELP twoldag_wal_fsyncs_total Durable WAL commit windows completed (one fsync each).
# TYPE twoldag_wal_fsyncs_total counter
twoldag_wal_fsyncs_total 3
# HELP twoldag_wal_bytes_written_total WAL bytes made durable across all commit windows.
# TYPE twoldag_wal_bytes_written_total counter
twoldag_wal_bytes_written_total 5880
# HELP twoldag_wal_commit_window_blocks Block records acknowledged per WAL commit window.
# TYPE twoldag_wal_commit_window_blocks histogram
twoldag_wal_commit_window_blocks_bucket{le="1"} 1
twoldag_wal_commit_window_blocks_bucket{le="2"} 1
twoldag_wal_commit_window_blocks_bucket{le="4"} 1
twoldag_wal_commit_window_blocks_bucket{le="8"} 2
twoldag_wal_commit_window_blocks_bucket{le="16"} 2
twoldag_wal_commit_window_blocks_bucket{le="32"} 2
twoldag_wal_commit_window_blocks_bucket{le="64"} 3
twoldag_wal_commit_window_blocks_bucket{le="+Inf"} 3
twoldag_wal_commit_window_blocks_sum 49
twoldag_wal_commit_window_blocks_count 3
`
	if got := sb.String(); got != want {
		t.Fatalf("exposition diverged from golden output:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}
