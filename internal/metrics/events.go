package metrics

import (
	"sync/atomic"

	"github.com/twoldag/twoldag/internal/events"
)

// EventCounters aggregates the typed event stream (internal/events)
// into atomic counters. It replaces the ad-hoc per-driver tallies the
// simulator and the experiment harness used to keep: both drivers emit
// the same events, so one counter type serves every deployment shape.
// All methods are safe for concurrent use from generation and audit
// worker pools; because atomic addition is commutative the final
// totals are independent of scheduling order, which keeps
// deterministic-simulator reports reproducible under any worker count.
type EventCounters struct {
	blocksSealed     atomic.Int64
	digestsAnnounced atomic.Int64
	auditHops        atomic.Int64
	consensusReached atomic.Int64
	auditsFailed     atomic.Int64
}

var _ events.Observer = (*EventCounters)(nil)

// OnBlockSealed implements events.Observer.
func (c *EventCounters) OnBlockSealed(events.BlockSealed) { c.blocksSealed.Add(1) }

// OnDigestAnnounced implements events.Observer.
func (c *EventCounters) OnDigestAnnounced(events.DigestAnnounced) { c.digestsAnnounced.Add(1) }

// OnAuditHop implements events.Observer.
func (c *EventCounters) OnAuditHop(events.AuditHop) { c.auditHops.Add(1) }

// OnConsensusReached implements events.Observer.
func (c *EventCounters) OnConsensusReached(events.ConsensusReached) { c.consensusReached.Add(1) }

// OnAuditFailed implements events.Observer.
func (c *EventCounters) OnAuditFailed(events.AuditFailed) { c.auditsFailed.Add(1) }

// BlocksSealed returns the number of BlockSealed events observed.
func (c *EventCounters) BlocksSealed() int64 { return c.blocksSealed.Load() }

// DigestsAnnounced returns the number of accepted digest deliveries.
func (c *EventCounters) DigestsAnnounced() int64 { return c.digestsAnnounced.Load() }

// AuditHops returns the number of REQ_CHILD probes observed.
func (c *EventCounters) AuditHops() int64 { return c.auditHops.Load() }

// ConsensusReached returns the number of successful audits.
func (c *EventCounters) ConsensusReached() int64 { return c.consensusReached.Load() }

// AuditsFailed returns the number of audits that ended without
// consensus.
func (c *EventCounters) AuditsFailed() int64 { return c.auditsFailed.Load() }

// Audits returns the total number of completed audits, successful or
// not.
func (c *EventCounters) Audits() int64 { return c.consensusReached.Load() + c.auditsFailed.Load() }
