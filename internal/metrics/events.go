package metrics

import (
	"fmt"
	"io"
	"sync/atomic"

	"github.com/twoldag/twoldag/internal/events"
)

// EventCounters aggregates the typed event stream (internal/events)
// into atomic counters. It replaces the ad-hoc per-driver tallies the
// simulator and the experiment harness used to keep: both drivers emit
// the same events, so one counter type serves every deployment shape.
// All methods are safe for concurrent use from generation and audit
// worker pools; because atomic addition is commutative the final
// totals are independent of scheduling order, which keeps
// deterministic-simulator reports reproducible under any worker count.
type EventCounters struct {
	blocksSealed     atomic.Int64
	digestsAnnounced atomic.Int64
	digestBatches    atomic.Int64
	auditHops        atomic.Int64
	consensusReached atomic.Int64
	auditsFailed     atomic.Int64
	messagesDropped  atomic.Int64
	retriesAttempted atomic.Int64
	peersSuspected   atomic.Int64
	peersRecovered   atomic.Int64

	// Durable-path counters, fed by the ledger's group-commit writer
	// through OnWALCommit (ledger.CommitObserver, implemented
	// structurally so this package stays ledger-free). The window
	// histogram makes fsync amortization visible on a scrape: a
	// healthy batched deployment shows mass in the high buckets,
	// while SyncAlways pins everything at le="1".
	walFsyncs     atomic.Int64
	walBytes      atomic.Int64
	walWindowSum  atomic.Int64
	walWindowBkts [len(walWindowBounds) + 1]atomic.Int64
}

// walWindowBounds are the upper bounds (inclusive, in blocks) of the
// commit-window histogram buckets; an implicit +Inf bucket follows.
var walWindowBounds = [...]int64{1, 2, 4, 8, 16, 32, 64}

var _ events.Observer = (*EventCounters)(nil)

// OnBlockSealed implements events.Observer.
func (c *EventCounters) OnBlockSealed(events.BlockSealed) { c.blocksSealed.Add(1) }

// OnDigestAnnounced implements events.Observer.
func (c *EventCounters) OnDigestAnnounced(events.DigestAnnounced) { c.digestsAnnounced.Add(1) }

// OnDigestBatchDelivered implements events.Observer: one batch counts
// as one flush and len(Digests) accepted deliveries, so
// DigestsAnnounced totals agree between the batched and singleton
// delivery paths.
func (c *EventCounters) OnDigestBatchDelivered(e events.DigestBatchDelivered) {
	c.digestBatches.Add(1)
	c.digestsAnnounced.Add(int64(len(e.Digests)))
}

// OnAuditHop implements events.Observer.
func (c *EventCounters) OnAuditHop(events.AuditHop) { c.auditHops.Add(1) }

// OnConsensusReached implements events.Observer.
func (c *EventCounters) OnConsensusReached(events.ConsensusReached) { c.consensusReached.Add(1) }

// OnAuditFailed implements events.Observer.
func (c *EventCounters) OnAuditFailed(events.AuditFailed) { c.auditsFailed.Add(1) }

// OnMessageDropped implements events.Observer.
func (c *EventCounters) OnMessageDropped(events.MessageDropped) { c.messagesDropped.Add(1) }

// OnRetryAttempted implements events.Observer.
func (c *EventCounters) OnRetryAttempted(events.RetryAttempted) { c.retriesAttempted.Add(1) }

// OnPeerSuspected implements events.Observer.
func (c *EventCounters) OnPeerSuspected(events.PeerSuspected) { c.peersSuspected.Add(1) }

// OnPeerRecovered implements events.Observer.
func (c *EventCounters) OnPeerRecovered(events.PeerRecovered) { c.peersRecovered.Add(1) }

// OnWALCommit records one durable commit window: a single fsync that
// acknowledged blocks block records totalling bytes on-disk WAL bytes.
// It structurally implements ledger.CommitObserver, so an
// *EventCounters passed as a driver observer also receives the
// backend's commit stream.
func (c *EventCounters) OnWALCommit(blocks int, bytes int64) {
	c.walFsyncs.Add(1)
	c.walBytes.Add(bytes)
	c.walWindowSum.Add(int64(blocks))
	i := 0
	for i < len(walWindowBounds) && int64(blocks) > walWindowBounds[i] {
		i++
	}
	c.walWindowBkts[i].Add(1)
}

// BlocksSealed returns the number of BlockSealed events observed.
func (c *EventCounters) BlocksSealed() int64 { return c.blocksSealed.Load() }

// DigestsAnnounced returns the number of accepted digest deliveries.
func (c *EventCounters) DigestsAnnounced() int64 { return c.digestsAnnounced.Load() }

// AuditHops returns the number of REQ_CHILD probes observed.
func (c *EventCounters) AuditHops() int64 { return c.auditHops.Load() }

// ConsensusReached returns the number of successful audits.
func (c *EventCounters) ConsensusReached() int64 { return c.consensusReached.Load() }

// AuditsFailed returns the number of audits that ended without
// consensus.
func (c *EventCounters) AuditsFailed() int64 { return c.auditsFailed.Load() }

// DigestBatchesDelivered returns the number of batched announcement
// flushes ingested (one per receiver per flush).
func (c *EventCounters) DigestBatchesDelivered() int64 { return c.digestBatches.Load() }

// Audits returns the total number of completed audits, successful or
// not.
func (c *EventCounters) Audits() int64 { return c.consensusReached.Load() + c.auditsFailed.Load() }

// MessagesDropped returns the number of observed frame losses
// (backpressure, unreachable peers, injected faults).
func (c *EventCounters) MessagesDropped() int64 { return c.messagesDropped.Load() }

// RetriesAttempted returns the number of re-issued announcement frames
// and PoP requests (first attempts are not retries).
func (c *EventCounters) RetriesAttempted() int64 { return c.retriesAttempted.Load() }

// PeersSuspected returns the number of circuit-breaker openings
// (consecutive transport failures crossing the suspicion threshold).
func (c *EventCounters) PeersSuspected() int64 { return c.peersSuspected.Load() }

// PeersRecovered returns the number of successful recovery probes
// re-admitting a suspected peer.
func (c *EventCounters) PeersRecovered() int64 { return c.peersRecovered.Load() }

// WALFsyncs returns the number of durable commit windows (one fsync
// each) the ledger backend has completed.
func (c *EventCounters) WALFsyncs() int64 { return c.walFsyncs.Load() }

// WALBytesWritten returns the total WAL bytes made durable across all
// commit windows.
func (c *EventCounters) WALBytesWritten() int64 { return c.walBytes.Load() }

// WALBlocksCommitted returns the total block records acknowledged
// across all commit windows (the histogram's _sum).
func (c *EventCounters) WALBlocksCommitted() int64 { return c.walWindowSum.Load() }

// WritePrometheus writes the counters in the Prometheus text
// exposition format (version 0.0.4), making the typed observer stream
// scrapeable: point a collector at any io.Writer-backed endpoint and
// the same counters that drive simulator reports become dashboards.
// Safe for concurrent use with event ingestion; each counter is read
// atomically (the set of counters is not a consistent snapshot, as
// usual for Prometheus scrapes).
func (c *EventCounters) WritePrometheus(w io.Writer) error {
	for _, m := range []struct {
		name, help string
		value      int64
	}{
		{"twoldag_blocks_sealed_total", "Blocks sealed (mined, signed, appended) across the deployment.", c.BlocksSealed()},
		{"twoldag_digests_announced_total", "Digest announcements accepted into neighbor caches (receiver side).", c.DigestsAnnounced()},
		{"twoldag_digest_batches_delivered_total", "Batched announcement flushes ingested (one per receiver per flush).", c.DigestBatchesDelivered()},
		{"twoldag_audit_hops_total", "REQ_CHILD probes issued by PoP validators.", c.AuditHops()},
		{"twoldag_consensus_reached_total", "Audits that collected gamma+1 distinct vouchers.", c.ConsensusReached()},
		{"twoldag_audits_failed_total", "Audits that ended without consensus.", c.AuditsFailed()},
		{"twoldag_messages_dropped_total", "Frames lost to backpressure, unreachable peers or injected faults.", c.MessagesDropped()},
		{"twoldag_retries_attempted_total", "Announcement frames and PoP requests re-issued after a failed attempt.", c.RetriesAttempted()},
		{"twoldag_peers_suspected_total", "Circuit-breaker openings after consecutive transport failures.", c.PeersSuspected()},
		{"twoldag_peers_recovered_total", "Recovery probes that re-admitted a suspected peer.", c.PeersRecovered()},
		{"twoldag_wal_fsyncs_total", "Durable WAL commit windows completed (one fsync each).", c.WALFsyncs()},
		{"twoldag_wal_bytes_written_total", "WAL bytes made durable across all commit windows.", c.WALBytesWritten()},
	} {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			m.name, m.help, m.name, m.name, m.value); err != nil {
			return err
		}
	}

	// Commit-window size histogram: cumulative buckets per the
	// exposition format, so le="+Inf" equals _count and _sum divided
	// by _count is the mean blocks amortized per fsync.
	const hn = "twoldag_wal_commit_window_blocks"
	if _, err := fmt.Fprintf(w, "# HELP %s Block records acknowledged per WAL commit window.\n# TYPE %s histogram\n", hn, hn); err != nil {
		return err
	}
	cum := int64(0)
	for i, bound := range walWindowBounds {
		cum += c.walWindowBkts[i].Load()
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%d\"} %d\n", hn, bound, cum); err != nil {
			return err
		}
	}
	cum += c.walWindowBkts[len(walWindowBounds)].Load()
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n%s_sum %d\n%s_count %d\n",
		hn, cum, hn, c.walWindowSum.Load(), hn, cum); err != nil {
		return err
	}
	return nil
}
