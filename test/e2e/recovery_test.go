// Crash-recovery end to end: real serve processes with -data dirs, one
// SIGKILLed mid-slot — after its block hit the fsync'd WAL, before it
// flushed — and restarted on the same directory. The restarted cluster
// must be indistinguishable from one that never crashed: identical
// sealed header hashes, audit verdicts, and per-node ledger state
// digests (the "state" op — a digest over the snapshot-v2
// serialization of S_i, H_i, A_i and the trust cap).
package e2e

import (
	"fmt"
	"path/filepath"
	"testing"

	"github.com/twoldag/twoldag/internal/cluster"
)

// recoveryFlags configure one durable host: the shared e2e world, no
// chaos, a trust cap (so snapshot v2's cap field rides the whole
// pipeline), the WAL sync policy under test, and a per-node data dir
// under base.
func recoveryFlags(base string, id int, sync string) []string {
	return []string{
		"-nodes", fmt.Sprint(nodes),
		"-seed", fmt.Sprint(seed),
		"-gamma", fmt.Sprint(gamma),
		"-difficulty", fmt.Sprint(difficulty),
		"-timeout", "1s",
		"-trust-cap", "4",
		"-sync", sync,
		"-data", filepath.Join(base, fmt.Sprintf("node-%d", id)),
	}
}

// spawnDurable boots the planned cluster with persistence on.
func spawnDurable(t *testing.T, base, sync string) []*proc {
	t.Helper()
	procs := make([]*proc, nodes)
	procs[0] = spawn(t, append([]string{"serve", "-id", "0"}, recoveryFlags(base, 0, sync)...)...)
	for id := 1; id < nodes; id++ {
		procs[id] = spawn(t, append([]string{
			"serve", "-id", fmt.Sprint(id), "-bootstrap", procs[0].addr,
		}, recoveryFlags(base, id, sync)...)...)
	}
	return procs
}

// recoveryObs is one run's comparable outcome.
type recoveryObs struct {
	hashes   []string // sealed header hashes, submission order
	verdicts []bool   // audit consensus outcomes, request order
	states   []string // per-node ledger state digests, id order
}

// runRecoveryE2E drives the fixed durable workload: two full submit
// slots, a forced compaction on the victim (so its recovery crosses
// snapshot + WAL, not WAL alone), a third slot in which everyone seals
// — and, when kill is set, the victim is SIGKILLed before anyone
// flushes and a fresh serve process resumes from its data dir — then
// flushes, audits, and a state digest per node.
func runRecoveryE2E(t *testing.T, base string, kill bool, sync string) recoveryObs {
	t.Helper()
	procs := spawnDurable(t, base, sync)
	var obs recoveryObs

	submitSlot := func(slot int, members []*proc) {
		t.Helper()
		for _, p := range members {
			p.mustOK(cluster.ControlRequest{Op: "slot", Slot: uint32(slot)})
		}
		type sealed struct {
			p *proc
			d string
		}
		seals := make([]sealed, 0, len(members))
		for _, p := range members {
			resp := p.mustOK(cluster.ControlRequest{Op: "seal", Data: payload(p.id, slot)})
			obs.hashes = append(obs.hashes, resp.Digest)
			seals = append(seals, sealed{p, resp.Digest})
		}
		for _, s := range seals {
			s.p.mustOK(cluster.ControlRequest{Op: "flush", Digests: []string{s.d}})
		}
	}
	audit := func(p *proc, ref cluster.ControlRef) {
		t.Helper()
		resp := p.call(cluster.ControlRequest{Op: "audit", Ref: &ref})
		if !resp.OK || resp.Consensus == nil {
			t.Fatalf("proc %d: audit %+v: %s", p.id, ref, resp.Err)
		}
		obs.verdicts = append(obs.verdicts, *resp.Consensus)
	}

	submitSlot(1, procs)
	submitSlot(2, procs)
	procs[victim].mustOK(cluster.ControlRequest{Op: "compact"})

	// Slot 3, by hand: everyone advances and seals, nobody flushes yet —
	// the mid-slot window where the victim's block exists only in its
	// own WAL.
	for _, p := range procs {
		p.mustOK(cluster.ControlRequest{Op: "slot", Slot: 3})
	}
	type sealed struct {
		p *proc
		d string
	}
	seals := make([]sealed, 0, nodes)
	for _, p := range procs {
		resp := p.mustOK(cluster.ControlRequest{Op: "seal", Data: payload(p.id, 3)})
		if resp.Ref == nil || resp.Ref.Node != p.id {
			t.Fatalf("proc %d: seal returned ref %+v", p.id, resp.Ref)
		}
		obs.hashes = append(obs.hashes, resp.Digest)
		seals = append(seals, sealed{p, resp.Digest})
	}

	members := procs
	if kill {
		procs[victim].kill()
		restarted := spawn(t, append([]string{
			"serve", "-id", fmt.Sprint(victim), "-bootstrap", procs[0].addr,
		}, recoveryFlags(base, victim, sync)...)...)
		restarted.mustOK(cluster.ControlRequest{Op: "slot", Slot: 3})
		// The sealed-but-unannounced block survived the kill bit for bit.
		latest := restarted.mustOK(cluster.ControlRequest{Op: "latest"})
		if latest.Digest != seals[victim].d {
			t.Fatalf("restarted latest digest %s, sealed %s", latest.Digest, seals[victim].d)
		}
		if latest.Ref == nil || latest.Ref.Node != uint32(victim) || latest.Ref.Seq != 2 {
			t.Fatalf("restarted latest ref %+v, want {%d 2}", latest.Ref, victim)
		}
		members = append([]*proc{}, procs...)
		members[victim] = restarted
		seals[victim].p = restarted
	}

	// Finish the slot: the survivors flush, and (in the kill run) the
	// restarted process re-announces its recovered block — completing
	// the interrupted flush from durable state alone.
	for _, s := range seals {
		s.p.mustOK(cluster.ControlRequest{Op: "flush", Digests: []string{s.d}})
	}

	for _, p := range members {
		p.mustOK(cluster.ControlRequest{Op: "slot", Slot: 4})
	}
	audit(members[1], cluster.ControlRef{Node: 0, Seq: 1})
	audit(members[0], cluster.ControlRef{Node: uint32(victim), Seq: 1})

	for _, p := range members {
		obs.states = append(obs.states, p.mustOK(cluster.ControlRequest{Op: "state"}).Digest)
	}
	for _, p := range members {
		p.leave()
	}
	return obs
}

// TestRecoveryE2EKillRestartEquivalence is the headline crash proof
// with real processes: an uninterrupted durable run and a run whose
// victim is SIGKILLed mid-slot and restarted from disk end with
// identical sealed headers, audit verdicts, and state digests.
func TestRecoveryE2EKillRestartEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	base := t.TempDir()
	want := runRecoveryE2E(t, filepath.Join(base, "oracle"), false, "always")
	for i, ok := range want.verdicts {
		if !ok {
			t.Fatalf("uninterrupted audit %d reached no consensus — not a usable baseline", i)
		}
	}
	got := runRecoveryE2E(t, filepath.Join(base, "crash"), true, "always")
	compareRecoveryObs(t, got, want)
}

// compareRecoveryObs requires two runs to be observably identical:
// sealed headers, audit verdicts, per-node state digests.
func compareRecoveryObs(t *testing.T, got, want recoveryObs) {
	t.Helper()
	if len(got.hashes) != len(want.hashes) {
		t.Fatalf("sealed %d blocks, oracle sealed %d", len(got.hashes), len(want.hashes))
	}
	for i := range want.hashes {
		if got.hashes[i] != want.hashes[i] {
			t.Errorf("sealed header %d diverged from the uninterrupted run", i)
		}
	}
	for i := range want.verdicts {
		if got.verdicts[i] != want.verdicts[i] {
			t.Errorf("audit %d: crash run consensus=%v, oracle consensus=%v", i, got.verdicts[i], want.verdicts[i])
		}
	}
	for i := range want.states {
		if got.states[i] != want.states[i] {
			t.Errorf("node %d ledger state diverged from the uninterrupted run", i)
		}
	}
}

// TestRecoveryE2ESyncPolicies re-runs the SIGKILL/restart proof under
// the batched and interval commit-window disciplines, each compared
// against one uninterrupted SyncAlways oracle. The victim dies between
// seal and flush — under -sync batch its final block was staged but
// never fsync-acknowledged, the harshest window group commit opens —
// and the restarted cluster must still be indistinguishable from the
// oracle, because the sealed chain is deterministic and every
// announced record was committed at a flush boundary first.
func TestRecoveryE2ESyncPolicies(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	base := t.TempDir()
	want := runRecoveryE2E(t, filepath.Join(base, "oracle"), false, "always")
	for i, ok := range want.verdicts {
		if !ok {
			t.Fatalf("uninterrupted audit %d reached no consensus — not a usable baseline", i)
		}
	}
	for _, sync := range []string{"batch", "interval=25ms"} {
		t.Run(sync, func(t *testing.T) {
			got := runRecoveryE2E(t, filepath.Join(base, sync), true, sync)
			compareRecoveryObs(t, got, want)
		})
	}
}
