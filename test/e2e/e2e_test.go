// Package e2e exercises a real cross-host cluster: it builds the
// twoldag binary once, spawns one `twoldag serve` process per planned
// device, drives them over the JSON-lines control protocol on their
// stdio, kills one mid-run under a seeded fault plan, grows the cluster
// back with `twoldag join -addr`, and asserts that every sealed header
// hash and every audit verdict matches the deterministic simulator
// driving the identical workload on the same (nodes, seed, gamma,
// difficulty) world.
//
// Every wait is event-driven: the control protocol is strictly
// request/response (a flush response means every live neighbor
// acknowledged), process startup is signalled by the ready line, and
// process death by Wait. No step polls with sleeps.
package e2e

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"testing"

	"github.com/twoldag/twoldag"
	"github.com/twoldag/twoldag/internal/cluster"
)

// The shared world. Every process and the simulator oracle must agree.
const (
	nodes      = 3
	seed       = 7
	gamma      = 1
	difficulty = 2
	victim     = 2 // killed mid-run; must not be 0, the bootstrap seed
)

// worldFlags configure one host process for the shared world plus the
// seeded chaos riding it: a light frame drop with the retry budget that
// rides it out, and a crash window parked on the victim from the kill
// slot on, so survivor frames addressed to the corpse die silently and
// deterministically instead of exercising kernel-dependent TCP errors.
var worldFlags = []string{
	"-nodes", fmt.Sprint(nodes),
	"-seed", fmt.Sprint(seed),
	"-gamma", fmt.Sprint(gamma),
	"-difficulty", fmt.Sprint(difficulty),
	"-timeout", "1s",
	"-drop", "0.03",
	"-crash-node", fmt.Sprint(victim),
	"-crash-from", "4",
	"-crash-until", "100",
	"-retry", "4",
	"-retry-base", "10ms",
	"-retry-max", "60ms",
	"-retry-jitter", "0.5",
}

var bin string // the twoldag binary, built once by TestMain

func TestMain(m *testing.M) {
	dir, err := os.MkdirTemp("", "twoldag-e2e")
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	defer os.RemoveAll(dir)
	bin = filepath.Join(dir, "twoldag")
	args := []string{"build"}
	if raceEnabled {
		args = append(args, "-race")
	}
	args = append(args, "-o", bin, "./cmd/twoldag")
	build := exec.Command("go", args...)
	build.Dir = "../.." // repo root; go test runs us in test/e2e
	build.Stderr = os.Stderr
	if err := build.Run(); err != nil {
		fmt.Fprintf(os.Stderr, "building twoldag: %v\n", err)
		os.Exit(1)
	}
	os.Exit(m.Run())
}

// proc is one live host process driven over its stdio.
type proc struct {
	t    *testing.T
	cmd  *exec.Cmd
	in   io.WriteCloser
	enc  *json.Encoder
	dec  *json.Decoder
	id   uint32
	addr string
}

// spawn starts the binary and blocks until its ready line arrives.
func spawn(t *testing.T, args ...string) *proc {
	t.Helper()
	cmd := exec.Command(bin, args...)
	in, err := cmd.StdinPipe()
	if err != nil {
		t.Fatal(err)
	}
	out, err := cmd.StdoutPipe()
	if err != nil {
		t.Fatal(err)
	}
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("starting %v: %v", args, err)
	}
	p := &proc{t: t, cmd: cmd, in: in, enc: json.NewEncoder(in), dec: json.NewDecoder(out)}
	t.Cleanup(func() {
		_ = cmd.Process.Kill()
		_ = cmd.Wait()
	})
	var ready cluster.ControlReady
	if err := p.dec.Decode(&ready); err != nil {
		t.Fatalf("reading ready line of %v: %v", args, err)
	}
	if ready.Event != "ready" {
		t.Fatalf("first line of %v: %+v", args, ready)
	}
	p.id, p.addr = ready.ID, ready.Addr
	return p
}

// call runs one request/response round trip; failures are fatal.
func (p *proc) call(req cluster.ControlRequest) cluster.ControlResponse {
	p.t.Helper()
	if err := p.enc.Encode(req); err != nil {
		p.t.Fatalf("proc %d: sending %+v: %v", p.id, req, err)
	}
	var resp cluster.ControlResponse
	if err := p.dec.Decode(&resp); err != nil {
		p.t.Fatalf("proc %d: reading response to %+v: %v", p.id, req, err)
	}
	return resp
}

// mustOK is call for ops whose failure ends the test.
func (p *proc) mustOK(req cluster.ControlRequest) cluster.ControlResponse {
	p.t.Helper()
	resp := p.call(req)
	if !resp.OK {
		p.t.Fatalf("proc %d: op %q failed: %s", p.id, req.Op, resp.Err)
	}
	return resp
}

// leave shuts the process down gracefully and reaps it.
func (p *proc) leave() {
	p.t.Helper()
	p.mustOK(cluster.ControlRequest{Op: "leave"})
	if err := p.cmd.Wait(); err != nil {
		p.t.Fatalf("proc %d: exit after leave: %v", p.id, err)
	}
}

// kill simulates a crash: SIGKILL, then reap.
func (p *proc) kill() {
	p.t.Helper()
	if err := p.cmd.Process.Kill(); err != nil {
		p.t.Fatal(err)
	}
	_ = p.cmd.Wait() // "signal: killed" is the point
}

// payload is the deterministic per-block body both sides submit.
func payload(id uint32, slot int) []byte {
	return []byte(fmt.Sprintf("n%d@s%d", id, slot))
}

// observation is one run's comparable outcome.
type observation struct {
	hashes   []string // sealed header hashes, submission order
	verdicts []bool   // audit consensus outcomes, request order
	joiner   uint32
}

// simOracle drives the identical workload on the simulator: three
// submit slots, victim silenced, an audit slot, a dynamic join, a
// post-join submit slot, a final audit slot.
func simOracle(t *testing.T) observation {
	t.Helper()
	rt, err := twoldag.New(
		twoldag.WithSimulator(),
		twoldag.WithNodes(nodes),
		twoldag.WithSeed(seed),
		twoldag.WithGamma(gamma),
		twoldag.WithDifficulty(difficulty),
	)
	if err != nil {
		t.Fatal(err)
	}
	defer rt.Close()
	ctx := context.Background()
	var obs observation
	submit := func(slot int, ids []twoldag.NodeID) {
		t.Helper()
		rt.AdvanceSlot()
		batch := make([]twoldag.Submission, len(ids))
		for i, id := range ids {
			batch[i] = twoldag.Submission{Node: id, Data: payload(uint32(id), slot)}
		}
		refs, err := rt.SubmitBatch(ctx, batch)
		if err != nil {
			t.Fatalf("sim SubmitBatch slot %d: %v", slot, err)
		}
		for _, ref := range refs {
			b, err := rt.Block(ref)
			if err != nil {
				t.Fatal(err)
			}
			obs.hashes = append(obs.hashes, b.Header.Hash().Hex())
		}
	}
	audit := func(validator twoldag.NodeID, ref twoldag.Ref) {
		t.Helper()
		res, err := rt.Audit(ctx, validator, ref)
		if res == nil {
			t.Fatalf("sim audit %v by %v: %v", ref, validator, err)
		}
		obs.verdicts = append(obs.verdicts, res.Consensus)
	}

	all := rt.Nodes()
	for slot := 1; slot <= 3; slot++ {
		submit(slot, all)
	}
	if err := rt.Silence(victim); err != nil {
		t.Fatal(err)
	}
	rt.AdvanceSlot() // slot 4: audit-only, routing around the victim
	audit(1, twoldag.Ref{Node: 0, Seq: 1})
	audit(0, twoldag.Ref{Node: 1, Seq: 1})
	joiner, err := rt.Join()
	if err != nil {
		t.Fatal(err)
	}
	obs.joiner = uint32(joiner)
	submit(5, []twoldag.NodeID{0, 1, joiner})
	rt.AdvanceSlot() // slot 6: the joiner audits history, history audits it
	audit(joiner, twoldag.Ref{Node: 0, Seq: 1})
	audit(1, twoldag.Ref{Node: joiner, Seq: 0})
	return obs
}

// TestClusterMatchesSimulator is the headline e2e: three real
// processes, one killed and replaced mid-run, byte-identical sealed
// headers and identical audit verdicts to the simulator.
func TestClusterMatchesSimulator(t *testing.T) {
	if testing.Short() {
		t.Skip("spawns real processes")
	}
	want := simOracle(t)

	// Boot the planned cluster: process 0 first, the rest discover the
	// directory through it.
	procs := make([]*proc, nodes)
	procs[0] = spawn(t, append([]string{"serve", "-id", "0"}, worldFlags...)...)
	for id := 1; id < nodes; id++ {
		procs[id] = spawn(t, append([]string{
			"serve", "-id", fmt.Sprint(id), "-bootstrap", procs[0].addr,
		}, worldFlags...)...)
	}
	for id, p := range procs {
		if p.id != uint32(id) {
			t.Fatalf("proc %d reports id %d", id, p.id)
		}
	}

	var got observation
	// submitSlot runs one slot in the phase order header equivalence
	// depends on: everyone advances, everyone seals, only then does
	// anyone flush — so every header embeds the digest snapshot as of
	// the previous slot, exactly as the simulator's SubmitBatch seals.
	submitSlot := func(slot int, members []*proc) {
		t.Helper()
		for _, p := range members {
			p.mustOK(cluster.ControlRequest{Op: "slot", Slot: uint32(slot)})
		}
		type sealed struct {
			p *proc
			d string
		}
		seals := make([]sealed, 0, len(members))
		for _, p := range members {
			resp := p.mustOK(cluster.ControlRequest{Op: "seal", Data: payload(p.id, slot)})
			if resp.Ref == nil || resp.Ref.Node != p.id {
				t.Fatalf("proc %d: seal returned ref %+v", p.id, resp.Ref)
			}
			got.hashes = append(got.hashes, resp.Digest)
			seals = append(seals, sealed{p, resp.Digest})
		}
		for _, s := range seals {
			s.p.mustOK(cluster.ControlRequest{Op: "flush", Digests: []string{s.d}})
		}
	}
	audit := func(p *proc, ref cluster.ControlRef) {
		t.Helper()
		resp := p.call(cluster.ControlRequest{Op: "audit", Ref: &ref})
		if !resp.OK || resp.Consensus == nil {
			t.Fatalf("proc %d: audit %+v: %s", p.id, ref, resp.Err)
		}
		if resp.Err != "" {
			t.Logf("proc %d: audit %+v: consensus=%v vouchers=%d err=%s", p.id, ref, *resp.Consensus, resp.Vouchers, resp.Err)
		}
		got.verdicts = append(got.verdicts, *resp.Consensus)
	}

	for slot := 1; slot <= 3; slot++ {
		submitSlot(slot, procs)
	}

	// The victim dies for real: survivors mark it dead first (the
	// distributed Silence), then the process is SIGKILLed — its state
	// is gone, which is why the cluster grows back via a new joiner
	// rather than a restart.
	survivors := []*proc{procs[0], procs[1]}
	for _, p := range survivors {
		p.mustOK(cluster.ControlRequest{Op: "silence", Node: victim})
	}
	procs[victim].kill()

	for _, p := range survivors {
		p.mustOK(cluster.ControlRequest{Op: "slot", Slot: 4})
	}
	audit(procs[1], cluster.ControlRef{Node: 0, Seq: 1})
	audit(procs[0], cluster.ControlRef{Node: 1, Seq: 1})

	// Grow back: the joiner discovers the cluster, re-anchors to the
	// newest live device, and must land on the same identity the
	// simulator's placement rule chose.
	joiner := spawn(t, append([]string{"join", "-addr", procs[0].addr}, worldFlags...)...)
	if joiner.id != want.joiner {
		t.Fatalf("joiner id %d, simulator placed %d", joiner.id, want.joiner)
	}
	for _, p := range survivors {
		info := p.mustOK(cluster.ControlRequest{Op: "info"})
		for _, id := range info.Live {
			if id == victim {
				t.Fatalf("proc %d still counts the dead victim live: %v", p.id, info.Live)
			}
		}
	}

	members := []*proc{procs[0], procs[1], joiner}
	submitSlot(5, members)
	for _, p := range members {
		p.mustOK(cluster.ControlRequest{Op: "slot", Slot: 6})
	}
	audit(joiner, cluster.ControlRef{Node: 0, Seq: 1})
	audit(procs[1], cluster.ControlRef{Node: uint32(want.joiner), Seq: 0})

	for _, p := range members {
		p.leave()
	}

	if len(got.hashes) != len(want.hashes) {
		t.Fatalf("sealed %d blocks, simulator sealed %d", len(got.hashes), len(want.hashes))
	}
	for i := range want.hashes {
		if got.hashes[i] != want.hashes[i] {
			t.Errorf("sealed header %d: cluster %s, simulator %s", i, got.hashes[i], want.hashes[i])
		}
	}
	if len(got.verdicts) != len(want.verdicts) {
		t.Fatalf("ran %d audits, simulator ran %d", len(got.verdicts), len(want.verdicts))
	}
	for i := range want.verdicts {
		if got.verdicts[i] != want.verdicts[i] {
			t.Errorf("audit %d: cluster consensus=%v, simulator consensus=%v", i, got.verdicts[i], want.verdicts[i])
		}
	}
}
