//go:build race

package e2e

// raceEnabled mirrors the test binary's -race flag so TestMain builds
// the spawned twoldag binary with the same instrumentation.
const raceEnabled = true
