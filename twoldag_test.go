package twoldag

import (
	"context"
	"errors"
	"testing"
	"time"

	"github.com/twoldag/twoldag/internal/topology"
)

func testCluster(t *testing.T, nodes, gamma int) *Cluster {
	t.Helper()
	c, err := NewCluster(ClusterConfig{
		Nodes:          nodes,
		Gamma:          gamma,
		Seed:           7,
		Difficulty:     2,
		RequestTimeout: time.Second,
	})
	if err != nil {
		t.Fatalf("NewCluster: %v", err)
	}
	t.Cleanup(func() { _ = c.Close() })
	return c
}

func fill(t *testing.T, c *Cluster, slots int) []Ref {
	t.Helper()
	ctx := context.Background()
	var refs []Ref
	for s := 0; s < slots; s++ {
		c.AdvanceSlot()
		for _, id := range c.Nodes() {
			ref, err := c.Submit(ctx, id, []byte{byte(s), byte(id)})
			if err != nil {
				t.Fatalf("Submit(%v): %v", id, err)
			}
			refs = append(refs, ref)
		}
	}
	return refs
}

func TestClusterEndToEnd(t *testing.T) {
	c := testCluster(t, 10, 3)
	refs := fill(t, c, 4)
	validator := c.Nodes()[9]
	target := refs[0]
	if target.Node == validator {
		target = refs[1]
	}
	res, err := c.Audit(context.Background(), validator, target)
	if err != nil {
		t.Fatalf("Audit: %v", err)
	}
	if !res.Consensus {
		t.Fatal("no consensus on a healthy cluster")
	}
	if len(res.Vouchers) < 4 {
		t.Fatalf("vouchers %v, want at least γ+1 = 4", res.Vouchers)
	}
}

func TestClusterBlockRetrieval(t *testing.T) {
	c := testCluster(t, 6, 1)
	refs := fill(t, c, 2)
	b, err := c.Block(refs[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Header.Ref() != refs[0] {
		t.Fatal("retrieved wrong block")
	}
	if _, err := c.Block(Ref{Node: 99}); err == nil {
		t.Fatal("unknown node accepted")
	}
}

func TestClusterSilenceRoutesAround(t *testing.T) {
	c := testCluster(t, 10, 2)
	refs := fill(t, c, 3)
	ids := c.Nodes()
	target := refs[0]
	// Silence one node that is neither validator nor target origin.
	var victim NodeID
	for _, id := range ids {
		if id != target.Node && id != ids[len(ids)-1] {
			victim = id
			break
		}
	}
	if err := c.Silence(victim); err != nil {
		t.Fatal(err)
	}
	res, err := c.Audit(context.Background(), ids[len(ids)-1], target)
	if err != nil {
		t.Fatalf("audit after silencing %v: %v", victim, err)
	}
	if !res.Consensus {
		t.Fatal("no consensus after one node silenced")
	}
	for _, v := range res.Vouchers {
		if v == victim {
			t.Fatal("silenced node vouched")
		}
	}
	if err := c.Silence(victim); err == nil {
		t.Fatal("double silence accepted")
	}
}

func TestClusterGammaTooHighFails(t *testing.T) {
	if _, err := NewCluster(ClusterConfig{Nodes: 5, Gamma: 5, Seed: 1}); err == nil {
		t.Fatal("gamma == nodes accepted")
	}
	if _, err := NewCluster(ClusterConfig{Nodes: 0, Gamma: 0}); err == nil {
		t.Fatal("zero nodes accepted")
	}
}

func TestClusterUnknownIDs(t *testing.T) {
	c := testCluster(t, 5, 1)
	ctx := context.Background()
	if _, err := c.Submit(ctx, 99, []byte("x")); err == nil {
		t.Fatal("unknown submitter accepted")
	}
	if _, err := c.Audit(ctx, 99, Ref{}); err == nil {
		t.Fatal("unknown validator accepted")
	}
}

func TestClusterExplicitTopology(t *testing.T) {
	g := topology.PaperFig4()
	c, err := NewCluster(ClusterConfig{Topology: g, Gamma: 2, Seed: 3, Difficulty: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	c.AdvanceSlot()
	for _, id := range c.Nodes() {
		if _, err := c.Submit(ctx, id, []byte("genesis")); err != nil {
			t.Fatal(err)
		}
	}
	c.AdvanceSlot()
	refB, err := c.Submit(ctx, 1, []byte("B1"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, 3, []byte("D1")); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Submit(ctx, 4, []byte("E1")); err != nil {
		t.Fatal(err)
	}
	res, err := c.Audit(ctx, 0, refB)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Consensus {
		t.Fatal("Fig. 4 audit failed over the facade")
	}
}

func TestClusterNoConsensusSurfacesSentinel(t *testing.T) {
	g := topology.PaperFig6() // 3 nodes
	c, err := NewCluster(ClusterConfig{Topology: g, Gamma: 2, Seed: 3, Difficulty: 2})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	ctx := context.Background()
	c.AdvanceSlot()
	ref, err := c.Submit(ctx, 1, []byte("lonely"))
	if err != nil {
		t.Fatal(err)
	}
	// No descendants exist yet: γ=2 needs 3 vouchers, impossible.
	if _, err := c.Audit(ctx, 0, ref); !errors.Is(err, ErrNoConsensus) {
		t.Fatalf("want ErrNoConsensus, got %v", err)
	}
}

func TestClusterDeterministicTopology(t *testing.T) {
	a := testCluster(t, 8, 1)
	b := testCluster(t, 8, 1)
	as, bs := a.Topology().Summary(), b.Topology().Summary()
	if as.Edges != bs.Edges || as.Diameter != bs.Diameter {
		t.Fatal("same seed built different clusters")
	}
}
